package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	rec, ok := parseBenchLine("BenchmarkEngineStep-8   \t10000\t    114620 ns/op\t   25092 B/op\t      42 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	want := benchRecord{Name: "BenchmarkEngineStep", Runs: 10000, NsPerOp: 114620,
		BytesPerOp: 25092, AllocsPerOp: 42, Procs: 8}
	if rec != want {
		t.Errorf("parsed %+v, want %+v", rec, want)
	}
	// Without -benchmem and without the -procs suffix; fractional ns/op and
	// sub-ns values must survive unrounded.
	rec, ok = parseBenchLine("BenchmarkTransferStep \t2615940\t       414.5 ns/op")
	if !ok || rec.Name != "BenchmarkTransferStep" || rec.NsPerOp != 414.5 || rec.AllocsPerOp != 0 {
		t.Errorf("plain line parsed as %+v (ok=%v)", rec, ok)
	}
	rec, ok = parseBenchLine("BenchmarkRotl-4 \t1000000000\t       0.48 ns/op")
	if !ok || rec.NsPerOp != 0.48 {
		t.Errorf("sub-ns line parsed as %+v (ok=%v)", rec, ok)
	}
	for _, line := range []string{"", "PASS", "ok  \tcollabnet\t4.062s", "goos: linux", "Benchmark"} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("non-benchmark line %q accepted", line)
		}
	}
}

func TestParseBenchFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.out")
	out := filepath.Join(dir, "BENCH_1.json")
	raw := `goos: linux
goarch: amd64
pkg: collabnet
BenchmarkBoltzmannSample \t 6994660\t       186.9 ns/op\t       0 B/op\t       0 allocs/op
BenchmarkEngineStep      \t   10000\t    114620 ns/op\t   25092 B/op\t      42 allocs/op
PASS
`
	if err := os.WriteFile(in, []byte(replaceTabs(raw)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := parseBenchFile(in, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var recs []benchRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Name != "BenchmarkEngineStep" || recs[1].AllocsPerOp != 42 {
		t.Errorf("round-trip records = %+v", recs)
	}
}

func TestParseBenchFileRejectsEmpty(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "empty.out")
	if err := os.WriteFile(in, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := parseBenchFile(in, filepath.Join(dir, "out.json")); err == nil {
		t.Error("file without benchmark lines should error")
	}
}

func TestDiffBenchRecords(t *testing.T) {
	base := []benchRecord{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkB", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 50},
		{Name: "BenchmarkZero", NsPerOp: 0},
	}
	cur := []benchRecord{
		{Name: "BenchmarkA", NsPerOp: 119},  // +19%: within threshold
		{Name: "BenchmarkB", NsPerOp: 1300}, // +30%: regression
		{Name: "BenchmarkNew", NsPerOp: 10}, // unshared: ignored
		{Name: "BenchmarkZero", NsPerOp: 5}, // zero baseline: ignored
	}
	diffs := diffBenchRecords(base, cur, 0.20)
	if len(diffs) != 2 {
		t.Fatalf("want 2 shared benchmarks, got %d: %+v", len(diffs), diffs)
	}
	byName := map[string]benchDiff{}
	for _, d := range diffs {
		byName[d.name] = d
	}
	if d := byName["BenchmarkA"]; d.regression {
		t.Errorf("+19%% must pass at a 20%% threshold: %+v", d)
	}
	if d := byName["BenchmarkB"]; !d.regression {
		t.Errorf("+30%% must fail at a 20%% threshold: %+v", d)
	}
}

func TestDiffBenchRecordsMinOfRuns(t *testing.T) {
	// -count=N recordings repeat each name; the diff must gate on the
	// fastest sample from each side, so one noisy run cannot fail the gate.
	base := []benchRecord{
		{Name: "BenchmarkA", NsPerOp: 100},
		{Name: "BenchmarkA", NsPerOp: 95},
		{Name: "BenchmarkA", NsPerOp: 180}, // outlier
	}
	cur := []benchRecord{
		{Name: "BenchmarkA", NsPerOp: 240}, // outlier
		{Name: "BenchmarkA", NsPerOp: 101},
	}
	diffs := diffBenchRecords(base, cur, 0.20)
	if len(diffs) != 1 {
		t.Fatalf("want 1 shared benchmark, got %+v", diffs)
	}
	d := diffs[0]
	if d.baseNs != 95 || d.curNs != 101 {
		t.Fatalf("min-of-runs not applied: %+v", d)
	}
	if d.regression {
		t.Errorf("101 vs 95 is +6%%, must pass: %+v", d)
	}
}

func TestDiffBenchFiles(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, recs []benchRecord) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := writeBenchJSON(path, recs); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("BENCH_1.json", []benchRecord{
		{Name: "BenchmarkA", Runs: 10, NsPerOp: 100},
		{Name: "BenchmarkB", Runs: 10, NsPerOp: 200},
	})
	ok := write("BENCH_2.json", []benchRecord{
		{Name: "BenchmarkA", Runs: 10, NsPerOp: 90},
		{Name: "BenchmarkB", Runs: 10, NsPerOp: 235}, // +17.5%
	})
	bad := write("BENCH_3.json", []benchRecord{
		{Name: "BenchmarkA", Runs: 10, NsPerOp: 500},
	})
	disjoint := write("BENCH_4.json", []benchRecord{
		{Name: "BenchmarkRenamed", Runs: 10, NsPerOp: 1},
	})
	if err := diffBenchFiles(base, ok, 0.20); err != nil {
		t.Errorf("within-threshold diff should pass: %v", err)
	}
	if err := diffBenchFiles(base, bad, 0.20); err == nil {
		t.Error("5x regression should fail the gate")
	}
	if err := diffBenchFiles(base, disjoint, 0.20); err != nil {
		t.Errorf("disjoint benchmark sets should warn, not fail: %v", err)
	}
	if err := diffBenchFiles(base, ok, -0.5); err == nil {
		t.Error("negative threshold should be rejected, not fail everything")
	}
	if err := diffBenchFiles(filepath.Join(dir, "missing.json"), ok, 0.20); err == nil {
		t.Error("missing baseline file should error")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte("[]\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := diffBenchFiles(base, empty, 0.20); err == nil {
		t.Error("empty record list should error")
	}
}

// replaceTabs turns the literal two-character \t sequences of the test
// fixture into real tabs, keeping the fixture readable.
func replaceTabs(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) && s[i+1] == 't' {
			out = append(out, '\t')
			i++
			continue
		}
		out = append(out, s[i])
	}
	return string(out)
}
