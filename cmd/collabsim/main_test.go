package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"collabnet/internal/experiments"
	"collabnet/internal/trace"
)

func testScale() experiments.Scale {
	return experiments.Scale{TrainSteps: 200, MeasureSteps: 100, Peers: 20, Replicas: 1, Seed: 1}
}

func TestRunAnalyticFigures(t *testing.T) {
	for _, fig := range []int{1, 2} {
		figs, err := run(fig, "", testScale())
		if err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
		if len(figs) != 1 || len(figs[0].Series) == 0 {
			t.Errorf("fig %d: malformed output", fig)
		}
	}
}

func TestRunSimulatedFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated figures")
	}
	counts := map[int]int{3: 1, 4: 2, 5: 2, 6: 1, 7: 2}
	for fig, want := range counts {
		figs, err := run(fig, "", testScale())
		if err != nil {
			t.Fatalf("fig %d: %v", fig, err)
		}
		if len(figs) != want {
			t.Errorf("fig %d: got %d figures, want %d", fig, len(figs), want)
		}
	}
}

func TestRunAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations")
	}
	for _, ab := range []string{"shape", "temperature", "voting", "punishment", "scheme", "histogram"} {
		figs, err := run(0, ab, testScale())
		if err != nil {
			t.Fatalf("%s: %v", ab, err)
		}
		if len(figs) != 1 {
			t.Errorf("%s: got %d figures", ab, len(figs))
		}
	}
}

func TestRunWarmStartFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated figures")
	}
	// The -warm flag flows through Scale.WarmStart; the chained sweep
	// figures must come out with the same shape as the cold ones.
	sc := testScale()
	sc.WarmStart = true
	for fig, want := range map[int]int{4: 2, 6: 1} {
		figs, err := run(fig, "", sc)
		if err != nil {
			t.Fatalf("fig %d warm: %v", fig, err)
		}
		if len(figs) != want {
			t.Errorf("fig %d warm: got %d figures, want %d", fig, len(figs), want)
		}
	}
	if _, err := run(0, "scheme", sc); err != nil {
		t.Errorf("warm scheme ablation: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := run(99, "", testScale()); err == nil {
		t.Error("unknown figure should error")
	}
	if _, err := run(0, "bogus", testScale()); err == nil {
		t.Error("unknown ablation should error")
	}
	figs, err := run(0, "", testScale())
	if err != nil || figs != nil {
		t.Error("no selection should return nothing")
	}
}

func TestRenderFigure(t *testing.T) {
	fig, err := experiments.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if err := render(fig); err != nil {
		t.Errorf("render failed: %v", err)
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	fig, err := experiments.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "fig1.csv")
	if err := writeCSV(path, fig); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tab, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Header) != 1+len(fig.Series) {
		t.Errorf("header = %v", tab.Header)
	}
	if !strings.Contains(strings.Join(tab.Header, ","), "beta=0.3") {
		t.Errorf("series name missing from header: %v", tab.Header)
	}
	if len(tab.Rows) != len(fig.Series[0].Points) {
		t.Errorf("rows = %d, want %d", len(tab.Rows), len(fig.Series[0].Points))
	}
}
