// Collabserve runs the trust/reputation service: an HTTP daemon over the
// concurrent trust store that ingests trust and contribution events,
// serves reputation/allocation queries from published snapshots, and
// refreshes EigenTrust on a cadence.
//
// Usage:
//
//	collabserve -peers 2000 -addr :8080
//	collabserve -peers 2000 -snapshot /var/lib/collabserve/state.snap
//	collabserve -peers 500 -refresh 250ms -shards 16 -queue 512
//
// On SIGINT/SIGTERM the server stops admitting writes, drains every
// acknowledged event into the store, and (when -snapshot is set) writes a
// binary snapshot; restarting with the same -snapshot path warm-starts
// bit-identical to a serial replay of everything the dead process had
// acknowledged. See the internal/serve package doc for the read/write/solve
// plane architecture.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"collabnet/internal/incentive"
	"collabnet/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		peers     = flag.Int("peers", 1000, "peer-id space size")
		shards    = flag.Int("shards", 0, "ingest shard count (0 = default)")
		queue     = flag.Int("queue", 0, "per-shard admission queue depth in batches (0 = default)")
		maxBatch  = flag.Int("maxbatch", 0, "max events per ingest request (0 = default)")
		refresh   = flag.Duration("refresh", 0, "EigenTrust refresh cadence (0 = default)")
		floor     = flag.Float64("floor", 0, "allocation floor (0 = scheme default)")
		watermark = flag.Int("watermark", 0, "store publish watermark in pending statements (0 = store default)")
		snapshot  = flag.String("snapshot", "", "snapshot path for warm restart (loaded if present, written on shutdown)")
		pretrust  = flag.String("pretrusted", "", "comma-separated pre-trusted peer ids")
		logSolves = flag.Bool("logsolves", false, "log every EigenTrust solve (iterations, warm/cold, dirty rows, wall time)")
	)
	flag.Parse()

	preTrusted, err := parseIDList(*pretrust)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collabserve:", err)
		os.Exit(2)
	}
	cfg := serve.Config{
		Peers:        *peers,
		Shards:       *shards,
		QueueDepth:   *queue,
		MaxBatch:     *maxBatch,
		Refresh:      *refresh,
		PreTrusted:   preTrusted,
		Floor:        *floor,
		Watermark:    *watermark,
		SnapshotPath: *snapshot,
	}
	if *logSolves {
		cfg.SolveLog = func(info incentive.SolveInfo) {
			mode := "cold"
			if info.Stats.Warm {
				mode = "warm"
			}
			refresh := "rebuild"
			if info.Stats.Refresh.DirtyOnly {
				refresh = "dirty-rows"
			} else if info.Stats.Refresh.PatternStable {
				refresh = "value-copy"
			}
			log.Printf("solve: %s iters=%d converged=%v refresh=%s rows=%d wall=%s",
				mode, info.Stats.Iterations, info.Stats.Converged,
				refresh, info.Stats.Refresh.RowsTouched, info.Duration)
		}
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "collabserve:", err)
		os.Exit(1)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("collabserve: serving %d peers on %s\n", *peers, *addr)

	select {
	case <-ctx.Done():
		fmt.Println("collabserve: shutting down")
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "collabserve:", err)
		os.Exit(1)
	}

	// Shutdown order matters: stop admission first (no handler can enqueue
	// after Shutdown returns), then drain and fold the queues, then persist.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "collabserve: shutdown:", err)
	}
	srv.Stop()
	if *snapshot != "" {
		if err := srv.SaveSnapshot(); err != nil {
			fmt.Fprintln(os.Stderr, "collabserve: snapshot:", err)
			os.Exit(1)
		}
		fmt.Println("collabserve: snapshot written to", *snapshot)
	}
}

func parseIDList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	ids := make([]int, 0, len(parts))
	for _, p := range parts {
		id, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad pre-trusted id %q", p)
		}
		ids = append(ids, id)
	}
	return ids, nil
}
