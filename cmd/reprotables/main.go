// Reprotables regenerates the paper-vs-measured tables recorded in
// EXPERIMENTS.md: every figure's headline quantities at the chosen scale,
// as machine-checkable text.
//
// Usage:
//
//	reprotables              # paper scale (takes a few minutes)
//	reprotables -scale quick
package main

import (
	"flag"
	"fmt"
	"os"

	"collabnet/internal/experiments"
	"collabnet/internal/stats"
)

func main() {
	scale := flag.String("scale", "paper", "experiment scale: quick|paper")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	sc := experiments.PaperScale()
	if *scale == "quick" {
		sc = experiments.QuickScale()
	}
	sc.Seed = *seed

	if err := run(sc); err != nil {
		fmt.Fprintln(os.Stderr, "reprotables:", err)
		os.Exit(1)
	}
}

func run(sc experiments.Scale) error {
	fmt.Printf("# Reproduction tables (peers=%d train=%d measure=%d replicas=%d seed=%d)\n\n",
		sc.Peers, sc.TrainSteps, sc.MeasureSteps, sc.Replicas, sc.Seed)

	// FIG1 / FIG2 are analytic; verify their defining properties.
	fig1, err := experiments.Fig1()
	if err != nil {
		return err
	}
	s03 := fig1.Find("beta=0.3")
	fmt.Printf("FIG1  R(0)=%.3f  R(50; beta=0.3)=%.3f  (paper: 0.05 and ~1.0)\n",
		s03.Points[0].Y, s03.Points[len(s03.Points)-1].Y)
	fig2 := experiments.Fig2()
	skew := fig2.Find("T=2")
	flat := fig2.Find("T=1000")
	fmt.Printf("FIG2  p(10)/p(1) at T=2: %.0f   at T=1000: %.3f  (paper: strongly skewed vs ~1)\n\n",
		skew.Points[9].Y/skew.Points[0].Y, flat.Points[9].Y/flat.Points[0].Y)

	// FIG3.
	f3, err := experiments.Fig3(sc)
	if err != nil {
		return err
	}
	fmt.Printf("FIG3  articles  with=%.3f±%.3f without=%.3f±%.3f gain=%+.1f%%  (paper: +~8%%)\n",
		f3.WithArticles.Mean(), f3.WithArticles.CI95(),
		f3.WithoutArticles.Mean(), f3.WithoutArticles.CI95(), 100*f3.ArticleGain())
	fmt.Printf("FIG3  bandwidth with=%.3f±%.3f without=%.3f±%.3f gain=%+.1f%%  (paper: +~11%%)\n\n",
		f3.WithBandwidth.Mean(), f3.WithBandwidth.CI95(),
		f3.WithoutBandwidth.Mean(), f3.WithoutBandwidth.CI95(), 100*f3.BandwidthGain())

	// FIG4: endpoints + linear fit.
	art4, bw4, err := experiments.Fig4(sc)
	if err != nil {
		return err
	}
	printSweep := func(label string, fig experiments.Figure) {
		for _, name := range []string{"altruistic", "irrational"} {
			s := fig.Find(name)
			xs := make([]float64, len(s.Points))
			ys := make([]float64, len(s.Points))
			for i, p := range s.Points {
				xs[i], ys[i] = p.X, p.Y
			}
			fit, ferr := stats.FitLine(xs, ys)
			if ferr != nil {
				fmt.Printf("%s %-10s fit-error: %v\n", label, name, ferr)
				continue
			}
			fmt.Printf("%s %-10s 10%%→%.3f 90%%→%.3f  slope=%+.4f/%%  R²=%.2f\n",
				label, name, s.Points[0].Y, s.Points[len(s.Points)-1].Y, fit.Slope, fit.R2)
		}
	}
	printSweep("FIG4 articles ", art4)
	printSweep("FIG4 bandwidth", bw4)
	fmt.Println("      (paper: near-linear rise with altruists, fall with irrationals)")
	fmt.Println()

	// FIG5: rational flatness.
	art5, bw5, err := experiments.Fig5(sc)
	if err != nil {
		return err
	}
	spread := func(fig experiments.Figure, name string) (lo, hi float64) {
		s := fig.Find(name)
		lo, hi = s.Points[0].Y, s.Points[0].Y
		for _, p := range s.Points {
			if p.Y < lo {
				lo = p.Y
			}
			if p.Y > hi {
				hi = p.Y
			}
		}
		return lo, hi
	}
	for _, name := range []string{"altruistic", "irrational"} {
		alo, ahi := spread(art5, name)
		blo, bhi := spread(bw5, name)
		fmt.Printf("FIG5 %-10s articles range [%.3f, %.3f]  bandwidth range [%.3f, %.3f]\n",
			name, alo, ahi, blo, bhi)
	}
	fmt.Println("      (paper: articles ~0.21-0.29, bandwidth ~0.54-0.68, both nearly flat)")
	fmt.Println()

	// FIG6: balanced mixes -> outcome random (report the per-point spread).
	f6, err := experiments.Fig6(sc)
	if err != nil {
		return err
	}
	cons := f6.Find("constructive")
	var sum stats.Summary
	for _, p := range cons.Points {
		sum.Add(p.Y)
	}
	fmt.Printf("FIG6  rational constructive fraction across sweep: mean=%.2f min=%.2f max=%.2f\n",
		sum.Mean(), sum.Min(), sum.Max())
	fmt.Println("      (paper: outcome essentially random when altruistic = irrational)")
	fmt.Println()

	// FIG7: majority following.
	alt7, irr7, err := experiments.Fig7(sc)
	if err != nil {
		return err
	}
	a := alt7.Find("constructive")
	i7 := irr7.Find("constructive")
	fmt.Printf("FIG7  altruists 10%%→%.2f 90%%→%.2f constructive  (paper: converges constructive)\n",
		a.Points[0].Y, a.Points[len(a.Points)-1].Y)
	fmt.Printf("FIG7  irrationals 10%%→%.2f 90%%→%.2f constructive  (paper: converges destructive)\n",
		i7.Points[0].Y, i7.Points[len(i7.Points)-1].Y)
	fmt.Println()

	// Ablations.
	shape, err := experiments.AblationReputationShape(sc)
	if err != nil {
		return err
	}
	fmt.Println("ABLATION shape (articles / bandwidth):")
	for _, s := range shape.Series {
		fmt.Printf("  %-9s %.3f / %.3f\n", s.Name, s.Points[0].Y, s.Points[1].Y)
	}
	voting, err := experiments.AblationWeightedVoting(sc)
	if err != nil {
		return err
	}
	v := voting.Find("accuracy")
	fmt.Printf("ABLATION voting   accuracy unweighted=%.3f weighted=%.3f\n",
		v.Points[0].Y, v.Points[1].Y)
	punish, err := experiments.AblationPunishment(sc)
	if err != nil {
		return err
	}
	pb := punish.Find("accepted-bad")
	fmt.Printf("ABLATION punish   accepted-bad off=%.3f on=%.3f\n", pb.Points[0].Y, pb.Points[1].Y)
	schemeFig, err := experiments.AblationScheme(sc)
	if err != nil {
		return err
	}
	fmt.Println("ABLATION scheme (articles / bandwidth):")
	for _, s := range schemeFig.Series {
		fmt.Printf("  %-12s %.3f / %.3f\n", s.Name, s.Points[0].Y, s.Points[1].Y)
	}
	return nil
}
