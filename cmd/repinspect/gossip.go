package main

import (
	"fmt"
	"math"

	"collabnet/internal/reputation"
	"collabnet/internal/xrand"
)

// gossipStats measures the ROADMAP's accuracy-vs-rounds tradeoff for
// approximate trust dissemination on one churned graph: the exact solver
// produces a fresh eigenvector after a churn burst, push gossip spreads it
// from the solver's node, and each round's accuracy is the trust error a
// randomly chosen peer still carries — uninformed peers keep acting on the
// pre-churn vector, so the expected per-peer L1 error after round r is
// (1 − informed(r)/n) · ‖t_new − t_old‖₁. The exact solve is the reference;
// the table quantifies how many rounds of O(n·fanout) messages buy how much
// of its accuracy.
func gossipStats(peers, cliqueSize, steps, rejoinEvery int, boost float64, fanout int) error {
	if peers < 4 || cliqueSize < 2 || cliqueSize >= peers-2 {
		return fmt.Errorf("need peers >= 4 and 2 <= clique < peers-2, got peers=%d clique=%d",
			peers, cliqueSize)
	}
	if steps <= 0 {
		return fmt.Errorf("need steps > 0, got %d", steps)
	}
	if fanout <= 0 {
		return fmt.Errorf("need fanout > 0, got %d", fanout)
	}
	g, err := reputation.NewLogGraph(peers)
	if err != nil {
		return err
	}
	honest := peers - cliqueSize

	// Baseline graph and vector: the state the network has fully gossiped.
	if err := driveWorkload(g, honest, cliqueSize, steps, rejoinEvery, boost); err != nil {
		return err
	}
	ws := reputation.NewEigenTrustWorkspace()
	cfg := reputation.DefaultEigenTrust()
	v, err := ws.Compute(g, cfg)
	if err != nil {
		return err
	}
	tOld := append([]float64(nil), v...)
	oldStats := ws.LastStats()

	// One churn burst (a tenth of the original schedule), then the exact
	// warm-started re-solve gossip must now disseminate.
	burst := steps / 10
	if burst == 0 {
		burst = 1
	}
	if err := driveWorkload(g, honest, cliqueSize, burst, rejoinEvery, boost); err != nil {
		return err
	}
	tNew, err := ws.Compute(g, cfg)
	if err != nil {
		return err
	}
	newStats := ws.LastStats()
	l1 := 0.0
	for i := range tNew {
		l1 += math.Abs(tNew[i] - tOld[i])
	}

	fmt.Printf("gossip accuracy-vs-rounds: %d peers, fanout %d, churn burst of %d steps\n\n",
		peers, fanout, burst)
	fmt.Printf("exact solver: baseline %d iterations (warm=%v), re-solve %d iterations (warm=%v, dirty rows=%d)\n",
		oldStats.Iterations, oldStats.Warm, newStats.Iterations, newStats.Warm,
		newStats.Refresh.RowsTouched)
	fmt.Printf("vector delta to disseminate: L1=%.3e\n\n", l1)

	gcfg := reputation.GossipConfig{Fanout: fanout, MaxRound: 100}
	res, trace, err := reputation.SpreadTrace(peers, 0, gcfg, xrand.New(1), nil)
	if err != nil {
		return err
	}
	fmt.Printf("%6s %10s %10s %14s\n", "round", "informed", "coverage", "E[peer L1 err]")
	fmt.Printf("%6d %10d %9.1f%% %14.3e\n", 0, 1, 100/float64(peers), l1*(1-1/float64(peers)))
	for r, informed := range trace {
		stale := 1 - float64(informed)/float64(peers)
		fmt.Printf("%6d %10d %9.1f%% %14.3e\n",
			r+1, informed, 100*float64(informed)/float64(peers), l1*stale)
	}
	fmt.Printf("\n%d rounds, %d messages (%.1f per peer), converged=%v; analytic estimate %d rounds\n",
		res.Rounds, res.Messages, float64(res.Messages)/float64(peers), res.Converged,
		reputation.AntiEntropyRounds(peers, fanout))
	return nil
}
