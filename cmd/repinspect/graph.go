package main

import (
	"fmt"
	"runtime"

	"collabnet/internal/reputation"
)

// graphStats simulates a collusion-plus-churn workload on the edge-log trust
// graph and reports the attack-relevant statistics: where the fabricated
// in-clique trust mass sits, what identity churn does to the log (row
// clears, tail length, compactions), which rows go dangling (and so defer
// to the teleport distribution), and how the three trust metrics — uniform
// EigenTrust, pre-trusted EigenTrust, and max-flow — each rank the clique.
//
// The workload is fully deterministic: honest peers push delivered-bandwidth
// trust around a rotating ring, a thin honest edge reaches the clique every
// 50 steps, the clique injects a fabricated trust ring every step, and one
// clique member whitewashes (sheds its row) on the -rejoin cadence.
func graphStats(peers, cliqueSize, steps, rejoinEvery int, boost float64) error {
	if peers < 4 || cliqueSize < 2 || cliqueSize >= peers-2 {
		return fmt.Errorf("need peers >= 4 and 2 <= clique < peers-2, got peers=%d clique=%d",
			peers, cliqueSize)
	}
	if steps <= 0 {
		return fmt.Errorf("need steps > 0, got %d", steps)
	}
	g, err := reputation.NewLogGraph(peers)
	if err != nil {
		return err
	}
	honest := peers - cliqueSize
	if err := driveWorkload(g, honest, cliqueSize, steps, rejoinEvery, boost); err != nil {
		return err
	}

	edges := g.AppendEdges(nil)
	inClique := func(p int) bool { return p >= honest }
	var total, cliqueMass float64
	for _, e := range edges {
		total += e.W
		if inClique(e.From) && inClique(e.To) {
			cliqueMass += e.W
		}
	}
	dangling := reputation.NewCSR(g).Dangling()

	fmt.Printf("trust graph after %d steps: %d peers (%d honest, %d-clique), boost=%g, rejoin every %d\n\n",
		steps, peers, honest, cliqueSize, boost, rejoinEvery)
	fmt.Printf("edge log:   nnz=%d  tail=%d  row-clears=%d  compactions=%d\n",
		g.NNZ(), g.TailLen(), g.RowClears(), g.Compactions())
	fmt.Printf("trust mass: total=%.1f  in-clique=%.1f (%.1f%% from %.0f%% of peers)\n",
		total, cliqueMass, 100*cliqueMass/total, 100*float64(cliqueSize)/float64(peers))
	fmt.Printf("dangling rows (defer to teleport): %d %v\n\n", len(dangling), dangling)

	share := func(t []float64) float64 {
		var tot, cl float64
		for p, v := range t {
			tot += v
			if inClique(p) {
				cl += v
			}
		}
		if tot == 0 {
			return 0
		}
		return cl / tot
	}
	// Fresh workspaces keep each solve cold (the bit-exact reference path)
	// and expose the solver stats EigenTrust's plain-function form hides.
	uniWS := reputation.NewEigenTrustWorkspace()
	uniform, err := uniWS.Compute(g, reputation.DefaultEigenTrust())
	if err != nil {
		return err
	}
	uniStats := uniWS.LastStats()
	preCfg := reputation.DefaultEigenTrust()
	preCfg.PreTrusted = []int{0, 1, 2}
	preWS := reputation.NewEigenTrustWorkspace()
	pre, err := preWS.Compute(g, preCfg)
	if err != nil {
		return err
	}
	preStats := preWS.LastStats()
	flow, err := reputation.MaxFlowTrust(g, 0)
	if err != nil {
		return err
	}
	fmt.Printf("clique trust share by metric (population share %.3f):\n",
		float64(cliqueSize)/float64(peers))
	fmt.Printf("  eigentrust (uniform teleport):     %.3f  (%d iterations, converged=%v)\n",
		share(uniform), uniStats.Iterations, uniStats.Converged)
	fmt.Printf("  eigentrust (pre-trusted {0,1,2}):  %.3f  (%d iterations, converged=%v)\n",
		share(pre), preStats.Iterations, preStats.Converged)
	fmt.Printf("  maxflow (evaluator 0):             %.3f\n", share(flow))

	g.Compact()
	fmt.Printf("\nafter forced compaction: nnz=%d  tail=%d  compactions=%d\n",
		g.NNZ(), g.TailLen(), g.Compactions())

	// Replay the identical workload through the concurrent store: automatic
	// watermark publishes plus the explicit ClearPeer/flush points produce a
	// stream of immutable epochs, and a reader pinned across each churn event
	// forces the retirement protocol to actually wait. The final arrays must
	// be bit-identical to the serial log above — the serial-reference
	// guarantee, checked here on real output rather than in tests only.
	cg, err := reputation.NewConcurrentGraph(peers, 0)
	if err != nil {
		return err
	}
	cg.SetPendingWatermark(256)
	if err := driveWorkload(cg, honest, cliqueSize, steps, rejoinEvery, boost); err != nil {
		return err
	}
	cg.Flush()

	// Deterministically exercise the retirement protocol so the counter
	// below reflects a real wait: pin the current epoch, publish once so the
	// pinned buffer becomes the spare, then let a second publish park on it
	// until we release. The republished statement is weight-preserving
	// (SetTrust to the existing value), keeping the arrays bit-identical.
	if len(edges) > 0 {
		idem := func() error { return cg.SetTrust(edges[0].From, edges[0].To, edges[0].W) }
		pin := cg.Acquire()
		if err := idem(); err != nil {
			return err
		}
		cg.Flush() // the pinned epoch is now the spare
		if err := idem(); err != nil {
			return err
		}
		done := make(chan struct{})
		go func() { cg.Flush(); close(done) }() // parks: spare still pinned
		for cg.Stats().RetireWaits == 0 {
			runtime.Gosched()
		}
		pin.Release()
		<-done
	}
	st := cg.Stats()
	match := "MATCH"
	if !edgesEqual(cg.AppendEdges(nil), edges) {
		match = "DIVERGED"
	}
	fmt.Printf("\nconcurrent store (same workload, watermark 256):\n")
	fmt.Printf("  epoch=%d  swaps=%d  retire-waits=%d  ingest-drains=%d\n",
		st.Epoch, st.Swaps, st.RetireWaits, st.Flushes)
	fmt.Printf("  pending=%d  pinned-readers=%d\n", st.Pending, st.Readers)
	fmt.Printf("  serial-reference check: %s (%d edges)\n", match, len(edges))

	// Read the trust ranking back through the TrustReader interface — the
	// same read plane collabserve queries go through — from both
	// implementations: the serial solver over the edge log and the
	// concurrent store's published snapshot. The two top-k lists must agree
	// exactly, since both solve the identical compacted graph.
	solver, err := reputation.NewTrustSolver(g, reputation.DefaultEigenTrust())
	if err != nil {
		return err
	}
	if err := solver.Solve(); err != nil {
		return err
	}
	var vec []float64
	var solveErr error
	seq := cg.Exclusive(func(lg *reputation.LogGraph) {
		vec, solveErr = reputation.EigenTrust(lg, reputation.DefaultEigenTrust())
	})
	if solveErr != nil {
		return solveErr
	}
	cg.PublishTrustAt(seq, vec)
	readers := []struct {
		name string
		r    reputation.TrustReader
	}{{"serial solver", solver}, {"concurrent store", cg}}
	var topSerial, top []reputation.PeerTrust
	for i, rd := range readers {
		top = rd.r.TopK(5, top[:0])
		fmt.Printf("\ntop-5 global trust via TrustReader (%s, snapshot seq %d):\n",
			rd.name, rd.r.TrustSnapshot().Seq)
		for _, pt := range top {
			marker := ""
			if inClique(pt.Peer) {
				marker = "  <- clique"
			}
			fmt.Printf("  peer %-4d trust %.4f%s\n", pt.Peer, pt.Trust, marker)
		}
		if i == 0 {
			topSerial = append(topSerial[:0], top...)
		} else if !topKEqual(topSerial, top) {
			fmt.Printf("  WARNING: readers disagree with serial solver\n")
		}
	}
	return nil
}

// topKEqual reports whether two TrustReader rankings are identical.
func topKEqual(a, b []reputation.PeerTrust) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// driveWorkload replays the deterministic collusion-plus-churn schedule on
// any trust store; both the serial log and the concurrent store run the very
// same statement sequence.
func driveWorkload(g reputation.Graph, honest, cliqueSize, steps, rejoinEvery int, boost float64) error {
	for s := 1; s <= steps; s++ {
		from := s % honest
		to := (from + 1 + s%(honest-1)) % honest
		if to != from {
			if err := g.AddTrust(from, to, 1); err != nil {
				return err
			}
		}
		if s%50 == 0 {
			if err := g.AddTrust(s%honest, honest+(s/50)%cliqueSize, 0.2); err != nil {
				return err
			}
		}
		for k := 0; k < cliqueSize; k++ {
			if err := g.AddTrust(honest+k, honest+(k+1)%cliqueSize, boost); err != nil {
				return err
			}
		}
		if rejoinEvery > 0 && s%rejoinEvery == 0 {
			if err := g.ClearPeer(honest + (s/rejoinEvery)%cliqueSize); err != nil {
				return err
			}
		}
	}
	return nil
}

// edgesEqual reports whether two canonical edge lists are identical.
func edgesEqual(a, b []reputation.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
