// Repinspect answers reputation what-if questions from the command line:
// given a sustained sharing behavior, where does a peer's reputation settle,
// how long does it take to earn the edit right, and what majority do its
// edits need?
//
// With -graph it instead inspects the trust graph under attack: a
// deterministic collusion-plus-churn workload on the edge-log graph, with
// the attack-relevant statistics (in-clique trust mass, dangling rows,
// row-clear/compaction counters) and the clique's trust share under each
// trust metric. The same workload then replays through the concurrent
// epoch-swapped store, reporting its publish/retirement counters (epochs,
// swaps, retire-waits, ingest drains) and checking the final arrays against
// the serial log bit-identically.
//
// With -shards it measures destination-range shard balance for the sharded
// EigenTrust solver on the same workload: per-shard rows, nnz, and exchange
// bytes for K ∈ {2,4,8}, a >2× imbalance flag, and a bit-identity check of
// each sharded solve against the serial reference.
//
// Usage:
//
//	repinspect -articles 0.5 -bandwidth 1.0 -steps 200
//	repinspect -beta 0.1 -articles 1 -bandwidth 1
//	repinspect -graph -peers 40 -clique 4 -boost 0.5 -rejoin 100 -steps 400
//	repinspect -shards -peers 300 -clique 6 -boost 0.5 -rejoin 150 -steps 2000
package main

import (
	"flag"
	"fmt"
	"os"

	"collabnet/internal/core"
)

func main() {
	var (
		articles  = flag.Float64("articles", 0.5, "sustained article sharing level in [0,1]")
		bandwidth = flag.Float64("bandwidth", 0.5, "sustained bandwidth sharing level in [0,1]")
		steps     = flag.Int("steps", 200, "time steps to simulate")
		beta      = flag.Float64("beta", 0, "override logistic beta (0 keeps the default)")
		graph     = flag.Bool("graph", false, "inspect the trust graph under a collusion+churn workload instead")
		gossip    = flag.Bool("gossip", false, "measure gossip dissemination accuracy vs rounds against the exact solver")
		shards    = flag.Bool("shards", false, "measure destination-range shard balance (K=2,4,8) on the collusion+churn workload")
		peers     = flag.Int("peers", 40, "graph/gossip mode: total peers")
		cliqueN   = flag.Int("clique", 4, "graph/gossip mode: colluding clique size")
		boost     = flag.Float64("boost", 0.5, "graph/gossip mode: fabricated per-step in-clique trust weight")
		rejoin    = flag.Int("rejoin", 100, "graph/gossip mode: whitewash cadence in steps (0 = no churn)")
		fanout    = flag.Int("fanout", 2, "gossip mode: push fanout per informed peer per round")
	)
	flag.Parse()

	if *graph {
		if err := graphStats(*peers, *cliqueN, *steps, *rejoin, *boost); err != nil {
			fmt.Fprintln(os.Stderr, "repinspect:", err)
			os.Exit(1)
		}
		return
	}
	if *gossip {
		if err := gossipStats(*peers, *cliqueN, *steps, *rejoin, *boost, *fanout); err != nil {
			fmt.Fprintln(os.Stderr, "repinspect:", err)
			os.Exit(1)
		}
		return
	}
	if *shards {
		if err := shardStats(*peers, *cliqueN, *steps, *rejoin, *boost); err != nil {
			fmt.Fprintln(os.Stderr, "repinspect:", err)
			os.Exit(1)
		}
		return
	}

	p := core.Default()
	if *beta > 0 {
		p.Beta = *beta
	}
	if err := p.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "repinspect:", err)
		os.Exit(1)
	}
	ledger, err := core.NewLedger(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repinspect:", err)
		os.Exit(1)
	}
	fn, _ := p.Reputation()

	fmt.Printf("scheme: g=%g beta=%g  Rmin=%.3f  inflection C*=%.1f  edit threshold θ=%.2f\n\n",
		p.G, p.Beta, p.RMin(), fn.Inflection(), p.EditTheta)
	fmt.Printf("sustained sharing: articles=%.0f%%, bandwidth=%.0f%%\n\n", *articles*100, *bandwidth*100)
	fmt.Printf("%6s %10s %8s %10s %10s\n", "step", "CS", "RS", "canEdit", "majority")

	editAt := -1
	stride := *steps / 10
	if stride == 0 {
		stride = 1
	}
	for s := 1; s <= *steps; s++ {
		ledger.StepSharing(*articles, *bandwidth)
		if editAt < 0 && ledger.CanEdit() {
			editAt = s
		}
		if s%stride == 0 || s == 1 {
			fmt.Printf("%6d %10.2f %8.3f %10v %10.3f\n",
				s, ledger.CS(), ledger.RS(), ledger.CanEdit(),
				core.RequiredMajority(p, ledger.RE()))
		}
	}
	fmt.Println()
	if editAt >= 0 {
		fmt.Printf("edit right earned after %d steps\n", editAt)
	} else {
		fmt.Printf("edit right NOT earned within %d steps (RS=%.3f < θ=%.2f)\n",
			*steps, ledger.RS(), p.EditTheta)
	}
	// Steady state under proportional decay.
	inflow := p.AlphaS**articles + p.BetaS**bandwidth
	if p.DecayMode == core.DecayProportional && p.DS > 0 {
		cs := inflow / p.DS
		if cs > p.CCap {
			cs = p.CCap
		}
		fmt.Printf("steady state: CS*=%.1f  RS*=%.3f\n", cs, fn.Eval(cs))
	}
}
