package main

import (
	"fmt"

	"collabnet/internal/reputation"
)

// shardStats measures destination-range shard balance on the deterministic
// collusion-plus-churn workload: for K ∈ {2,4,8} it emits the per-shard
// transposed slices, reports each shard's rows, nnz, and per-round outbound
// exchange bytes, and flags any split whose heaviest shard carries more
// than 2× the mean nnz — the imbalance measurement the ROADMAP's sharding
// item asks for. (Max-vs-mean rather than max-vs-min: churned graphs can
// leave a shard nearly empty, and a zero minimum would flag every split.)
//
// Each K then runs the sharded solve and checks it bit-identical against
// the serial cold workspace solve — the MATCH line `make shard-smoke`
// gates CI on. A divergence is an error, not just a printout.
func shardStats(peers, cliqueSize, steps, rejoinEvery int, boost float64) error {
	if peers < 4 || cliqueSize < 2 || cliqueSize >= peers-2 {
		return fmt.Errorf("need peers >= 4 and 2 <= clique < peers-2, got peers=%d clique=%d",
			peers, cliqueSize)
	}
	if steps <= 0 {
		return fmt.Errorf("need steps > 0, got %d", steps)
	}
	g, err := reputation.NewLogGraph(peers)
	if err != nil {
		return err
	}
	honest := peers - cliqueSize
	if err := driveWorkload(g, honest, cliqueSize, steps, rejoinEvery, boost); err != nil {
		return err
	}
	g.Compact()

	cfg := reputation.DefaultEigenTrust()
	ws := reputation.NewEigenTrustWorkspace()
	serial, err := ws.Compute(g, cfg)
	if err != nil {
		return err
	}
	serialStats := ws.LastStats()
	want := append([]float64(nil), serial...)

	fmt.Printf("shard balance after %d steps: %d peers (%d honest, %d-clique), boost=%g, rejoin every %d\n",
		steps, peers, honest, cliqueSize, boost, rejoinEvery)
	fmt.Printf("graph: nnz=%d  serial solve: %d iterations, converged=%v\n",
		g.NNZ(), serialStats.Iterations, serialStats.Converged)

	diverged := false
	for _, k := range []int{2, 4, 8} {
		plan, err := reputation.NewShardPlan(g, k)
		if err != nil {
			return err
		}
		fmt.Printf("\nK=%d shards (destination ranges):\n", k)
		fmt.Printf("  %5s %12s %8s %8s %14s\n", "shard", "range", "rows", "nnz", "xchg B/round")
		maxNNZ := 0
		for s := 0; s < k; s++ {
			sl := plan.Slice(s)
			// Per round a shard ships its output slice to K−1 peers and the
			// combiner: rows × 8 bytes × K outbound.
			xchg := sl.Rows() * 8 * k
			fmt.Printf("  %5d %12s %8d %8d %14d\n",
				s, fmt.Sprintf("[%d,%d)", sl.Lo, sl.Hi), sl.Rows(), sl.NNZ(), xchg)
			if sl.NNZ() > maxNNZ {
				maxNNZ = sl.NNZ()
			}
		}
		mean := float64(plan.NNZ()) / float64(k)
		balance := "balanced"
		if mean > 0 && float64(maxNNZ) > 2*mean {
			balance = fmt.Sprintf("IMBALANCED >2x (max %d vs mean %.1f)", maxNNZ, mean)
		}
		fmt.Printf("  nnz balance: max/mean = %.2f — %s\n", float64(maxNNZ)/mean, balance)

		sw, err := reputation.NewShardedWorkspace(k)
		if err != nil {
			return err
		}
		got, err := sw.Compute(g, cfg)
		if err != nil {
			return err
		}
		st := sw.ShardStats()
		match := "MATCH"
		if len(got) != len(want) {
			match = "DIVERGED"
		} else {
			for i := range got {
				if got[i] != want[i] {
					match = "DIVERGED"
					break
				}
			}
		}
		if st.Rounds != serialStats.Iterations {
			match = "DIVERGED"
		}
		if match == "DIVERGED" {
			diverged = true
		}
		fmt.Printf("  sharded solve: %d rounds, %d bytes exchanged — serial-reference check: %s\n",
			st.Rounds, st.BytesExchanged, match)
	}
	if diverged {
		return fmt.Errorf("sharded solve diverged from the serial reference")
	}
	return nil
}
