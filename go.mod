module collabnet

go 1.24
