# Collabnet build/test/bench entry points. `make check` is what CI (and the
# next PR) should run; `make bench` records the benchmark trajectory file
# BENCH_<n>.json (bump BENCH_N per PR to keep history).

GO      ?= go
BENCH_N ?= 1

.PHONY: build test vet fmt-check check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt-check test

# bench runs every benchmark once with allocation stats and converts the raw
# output into BENCH_$(BENCH_N).json for cross-PR comparison.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count=1 . > bench.out
	@cat bench.out
	$(GO) run ./cmd/collabsim -benchparse bench.out -benchjson BENCH_$(BENCH_N).json

clean:
	rm -f bench.out BENCH_*.json
