# Collabnet build/test/bench entry points. `make check` is what CI (and the
# next PR) should run; `make bench` records the benchmark trajectory file
# BENCH_<n>.json (bump BENCH_N per PR to keep history), and `make
# bench-diff` gates the two newest trajectory files against each other.

GO      ?= go
BENCH_N ?= 2

.PHONY: build test vet fmt-check check bench bench-diff clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt-check test bench-diff

# bench runs every benchmark with allocation stats and converts the raw
# output into BENCH_$(BENCH_N).json for cross-PR comparison. BENCH_COUNT>1
# records repeated samples per benchmark; bench-diff collapses them to
# min-of-runs, which sheds scheduler noise on busy machines.
BENCH_COUNT ?= 1
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count=$(BENCH_COUNT) . > bench.out
	@cat bench.out
	$(GO) run ./cmd/collabsim -benchparse bench.out -benchjson BENCH_$(BENCH_N).json

# bench-diff compares the two newest BENCH_*.json trajectory files and
# fails on a >20% ns/op regression in any benchmark they share. With fewer
# than two record files it reports and passes, so `make check` works on a
# fresh checkout before the first `make bench` of a new PR. The records
# compare wall-clock, so they are only meaningful when recorded on
# comparable hardware — the intended flow is that each PR runs
# `make bench BENCH_N=<pr>` in the same CI environment as its predecessor
# to record the current tree before `make check` gates it; the diff only
# sees recorded files, so a PR that skips the recording step is not gated.
bench-diff:
	@files=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n); \
	new=$$(echo "$$files" | tail -1); \
	old=$$(echo "$$files" | tail -2 | head -1); \
	if [ -z "$$new" ] || [ "$$new" = "$$old" ]; then \
		echo "bench-diff: fewer than two BENCH_*.json files, nothing to compare"; \
	else \
		$(GO) run ./cmd/collabsim -benchbase $$old -benchdiff $$new; \
	fi

# clean removes scratch output only: BENCH_*.json are version-controlled
# trajectory records the bench-diff gate depends on, so they stay.
clean:
	rm -f bench.out
