# Collabnet build/test/bench entry points. `make check` is the gate CI
# runs; `make bench` records the benchmark trajectory file BENCH_<n>.json
# (bump BENCH_N per PR to keep history), and `make bench-diff` gates the
# two newest trajectory files against each other.
#
# CI: .github/workflows/ci.yml runs on every push/PR with a pinned Go
# toolchain and module/build caching. Job "check" re-records the newest
# bench slot on CI hardware (after `bench-guard` verifies the PR committed
# one) and then runs `make check`; job "race-and-fuzz" runs the suite under
# the race detector plus `make fuzz-smoke`; job "figure-smoke" renders all
# figures at quick scale through the cold and warm sweep paths and uploads
# the CSVs as build artifacts; `make cover` reports function coverage
# (non-blocking in CI, threshold on the hot-path packages).

GO      ?= go
BENCH_N ?= 10

.PHONY: build test vet fmt-check check bench bench-diff bench-guard \
	cover fuzz-smoke race-stress figure-smoke scenario-smoke \
	serve-smoke serve-bench shard-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: build vet fmt-check test bench-diff

# bench runs every benchmark with allocation stats and converts the raw
# output into BENCH_$(BENCH_N).json for cross-PR comparison. BENCH_COUNT>1
# records repeated samples per benchmark; bench-diff collapses them to
# min-of-runs, which sheds scheduler noise on busy machines.
BENCH_COUNT ?= 1
bench:
	$(GO) test -run '^$$' -bench . -benchmem -count=$(BENCH_COUNT) . > bench.out
	@cat bench.out
	$(GO) run ./cmd/collabsim -benchparse bench.out -benchjson BENCH_$(BENCH_N).json

# bench-diff compares the two newest BENCH_*.json trajectory files and
# fails on a >20% ns/op regression in any benchmark they share. With fewer
# than two record files it reports and passes, so `make check` works on a
# fresh checkout before the first `make bench` of a new PR. The records
# compare wall-clock, so they are only meaningful when recorded on
# comparable hardware — the intended flow is that each PR runs
# `make bench BENCH_N=<pr>` in the same CI environment as its predecessor
# to record the current tree before `make check` gates it. bench-guard
# (below) closes the loophole where a PR that records nothing sees its
# predecessor's files silently compared instead.
bench-diff:
	@files=$$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n); \
	new=$$(echo "$$files" | tail -1); \
	old=$$(echo "$$files" | tail -2 | head -1); \
	if [ -z "$$new" ] || [ "$$new" = "$$old" ]; then \
		echo "bench-diff: fewer than two BENCH_*.json files, nothing to compare"; \
	else \
		$(GO) run ./cmd/collabsim -benchbase $$old -benchdiff $$new; \
	fi

# bench-guard fails when the current PR's trajectory record is missing, so
# a PR that skips `make bench BENCH_N=$(BENCH_N)` cannot slip past the
# bench-diff gate unrecorded. From slot 8 on it also requires the
# serve-level records (ServeLoadgen*) that `make serve-bench` merges in, so
# the serving path's latency/throughput trajectory cannot silently drop out
# of the file; from slot 9 on it requires the incremental-refresh records
# (TrustRefreshIncremental*) that pin the warm-vs-cold solve trajectory;
# from slot 10 on it requires the sharded-solver grid (EigenTrustSharded*)
# so the per-shard scaling trajectory stays recorded.
# CI additionally checks that a BENCH_*.json file actually changed in the
# PR's diff (the Makefile cannot know the merge base).
bench-guard:
	@if [ ! -f BENCH_$(BENCH_N).json ]; then \
		echo "bench-guard: BENCH_$(BENCH_N).json missing —" \
			"run 'make bench BENCH_N=$(BENCH_N)' and commit the record"; \
		exit 1; \
	fi; \
	if [ "$(BENCH_N)" -ge 8 ] && ! grep -q ServeLoadgen BENCH_$(BENCH_N).json; then \
		echo "bench-guard: BENCH_$(BENCH_N).json has no ServeLoadgen records —" \
			"run 'make serve-bench BENCH_N=$(BENCH_N)' after 'make bench'"; \
		exit 1; \
	fi; \
	if [ "$(BENCH_N)" -ge 9 ] && ! grep -q TrustRefreshIncremental BENCH_$(BENCH_N).json; then \
		echo "bench-guard: BENCH_$(BENCH_N).json has no TrustRefreshIncremental records —" \
			"run 'make bench BENCH_N=$(BENCH_N)' with the incremental-refresh benchmark present"; \
		exit 1; \
	fi; \
	if [ "$(BENCH_N)" -ge 10 ] && ! grep -q EigenTrustSharded BENCH_$(BENCH_N).json; then \
		echo "bench-guard: BENCH_$(BENCH_N).json has no EigenTrustSharded records —" \
			"run 'make bench BENCH_N=$(BENCH_N)' with the sharded-solver grid present"; \
		exit 1; \
	fi; \
	echo "bench-guard: BENCH_$(BENCH_N).json present"

# cover prints a function-level coverage summary and enforces COVER_MIN% on
# the packages the voting/simulation hot path lives in. The suite runs once;
# the per-package floors are parsed from that run's "coverage: N%" lines. CI
# runs it as a non-blocking report step; run it locally before recording a
# PR.
COVER_MIN  ?= 80
COVER_PKGS ?= ./internal/articles ./internal/sim ./internal/reputation
cover:
	@$(GO) test -coverprofile=cover.out ./... > cover.txt 2>&1 || { cat cover.txt; exit 1; }
	@cat cover.txt
	@$(GO) tool cover -func=cover.out | tail -1
	@fail=0; \
	for pkg in $(COVER_PKGS); do \
		name=$$($(GO) list $$pkg); \
		pct=$$(awk -v p="$$name" '$$1 == "ok" && $$2 == p' cover.txt \
			| sed -nE 's/.*coverage: ([0-9.]+)% of statements.*/\1/p'); \
		echo "$$pkg coverage: $$pct% (floor $(COVER_MIN)%)"; \
		ok=$$(awk -v p="$$pct" -v m="$(COVER_MIN)" 'BEGIN { print (p+0 >= m+0) ? 1 : 0 }'); \
		if [ "$$ok" != 1 ]; then echo "cover: $$pkg below $(COVER_MIN)%"; fail=1; fi; \
	done; \
	exit $$fail

# race-stress drives the concurrent trust store's randomized mixed
# schedules (parallel writers, lock-free readers, churn, refreshes) under
# the race detector, repeated RACE_COUNT times for interleaving diversity.
# The -timeout doubles as the deadlock gate: a publisher that never sees
# its spare buffer drain, or a reader stuck behind a lock that should not
# exist, turns into a test-binary panic with full goroutine dumps instead
# of a silently hung CI job.
RACE_COUNT   ?= 3
RACE_TIMEOUT ?= 300s
race-stress:
	$(GO) test -race -run 'Concurrent' -count=$(RACE_COUNT) \
		-timeout $(RACE_TIMEOUT) ./internal/reputation/ ./internal/incentive/

# fuzz-smoke runs every fuzz target for FUZZTIME as a quick corpus-driven
# smoke (CI pairs it with -race to shake out data races in the parallel
# EigenTrust/sweep paths). Targets are discovered by scanning test files, so
# new Fuzz* functions join the smoke automatically.
FUZZTIME ?= 20s
fuzz-smoke:
	@found=0; \
	for pkg in $$($(GO) list ./...); do \
		dir=$$($(GO) list -f '{{.Dir}}' $$pkg); \
		targets=$$(grep -hoE 'func Fuzz[A-Za-z0-9_]+' $$dir/*_test.go 2>/dev/null \
			| sed 's/^func //' | sort -u); \
		for t in $$targets; do \
			found=1; \
			echo "fuzz-smoke: $$pkg $$t ($(FUZZTIME))"; \
			$(GO) test -run '^$$' -fuzz "^$$t$$" -fuzztime=$(FUZZTIME) $$pkg || exit 1; \
		done; \
	done; \
	if [ "$$found" = 0 ]; then echo "fuzz-smoke: no fuzz targets found"; exit 1; fi

# figure-smoke renders every figure and ablation at quick scale, writing
# the CSV series under FIGURE_OUT. The cold pass (full retraining, the
# reference) covers everything; the warm pass (snapshot + burn-in chains)
# re-renders only the surfaces that actually run on the chain scheduler —
# the Figure 4-7 sweeps and the chained ablations. Figures 1-2 are
# analytic, and fig 3 / the histogram ablation are single-point experiments
# with no chain to warm, so they appear only under cold. CI uploads the
# directory as a build artifact; any rendering error fails the job, so the
# warm path cannot silently rot.
FIGURE_OUT ?= figures
figure-smoke:
	@rm -rf $(FIGURE_OUT)
	@for fig in 1 2 3 4 5 6 7; do \
		echo "figure-smoke: fig $$fig (cold)"; \
		$(GO) run ./cmd/collabsim -fig $$fig -scale quick \
			-csv $(FIGURE_OUT)/cold > /dev/null || exit 1; \
	done
	@for ab in shape temperature voting punishment scheme histogram attack; do \
		echo "figure-smoke: ablation $$ab (cold)"; \
		$(GO) run ./cmd/collabsim -ablation $$ab -scale quick \
			-csv $(FIGURE_OUT)/cold > /dev/null || exit 1; \
	done
	@for fig in 4 5 6 7; do \
		echo "figure-smoke: fig $$fig (warm)"; \
		$(GO) run ./cmd/collabsim -fig $$fig -scale quick -warm \
			-csv $(FIGURE_OUT)/warm > /dev/null || exit 1; \
	done
	@for ab in shape temperature voting punishment scheme attack; do \
		echo "figure-smoke: ablation $$ab (warm)"; \
		$(GO) run ./cmd/collabsim -ablation $$ab -scale quick -warm \
			-csv $(FIGURE_OUT)/warm > /dev/null || exit 1; \
	done
	@echo "figure-smoke: CSVs under $(FIGURE_OUT)/"

# scenario-smoke runs every built-in adversarial scenario (fixed seeds, so
# the reports are the pinned ones the scenario tests assert on) and renders
# the scheme-robustness ablation through the warm-start chain path, writing
# its CSV under FIGURE_OUT. CI runs it in the figure-smoke job; any scenario
# failure or rendering error fails the target.
scenario-smoke:
	$(GO) run ./cmd/collabsim -scenario all
	@echo "scenario-smoke: ablation attack (warm)"
	@$(GO) run ./cmd/collabsim -ablation attack -scale quick -warm \
		-csv $(FIGURE_OUT)/scenario > /dev/null
	@echo "scenario-smoke: ok"

# serve-smoke is the serving-path CI gate: boot collabserve, drive it with
# a short mixed loadgen burst whose -verify flag proves replay equivalence
# (the server's canonical edge dump equals a serial LogGraph replay of the
# accepted events), SIGTERM the server so it drains and snapshots, then
# warm-restart from the snapshot and require the restored store to still
# hold the data (loadgen -check). Any step failing — including an unclean
# shutdown or a missing snapshot — fails the target.
SERVE_PORT ?= 18987
SERVE_DIR  ?= /tmp/collabnet-serve-smoke
serve-smoke:
	@rm -rf $(SERVE_DIR) && mkdir -p $(SERVE_DIR)
	@$(GO) build -o $(SERVE_DIR)/collabserve ./cmd/collabserve
	@$(GO) build -o $(SERVE_DIR)/loadgen ./cmd/loadgen
	@set -e; \
	$(SERVE_DIR)/collabserve -addr 127.0.0.1:$(SERVE_PORT) -peers 256 \
		-refresh 100ms -snapshot $(SERVE_DIR)/state.snap & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	sleep 1; \
	$(SERVE_DIR)/loadgen -url http://127.0.0.1:$(SERVE_PORT) -peers 256 \
		-duration 3s -workers 4 -writemix 0.8 -verify; \
	echo "serve-smoke: SIGTERM -> drain + snapshot"; \
	kill -TERM $$pid; wait $$pid; \
	test -f $(SERVE_DIR)/state.snap || { echo "serve-smoke: no snapshot written"; exit 1; }; \
	echo "serve-smoke: warm restart"; \
	$(SERVE_DIR)/collabserve -addr 127.0.0.1:$(SERVE_PORT) -peers 256 \
		-snapshot $(SERVE_DIR)/state.snap & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	sleep 1; \
	$(SERVE_DIR)/loadgen -url http://127.0.0.1:$(SERVE_PORT) -peers 256 -check; \
	kill -TERM $$pid; wait $$pid; \
	trap - EXIT; \
	echo "serve-smoke: ok"

# serve-bench records the serving path's latency/throughput records into
# the current trajectory slot: a closed-loop mixed burst against a locally
# booted server, verified for replay equivalence, merged into
# BENCH_$(BENCH_N).json alongside the `make bench` records (same schema,
# ns-per-op convention, so bench-diff gates them too).
SERVE_BENCH_DURATION ?= 5s
serve-bench:
	@rm -rf $(SERVE_DIR) && mkdir -p $(SERVE_DIR)
	@$(GO) build -o $(SERVE_DIR)/collabserve ./cmd/collabserve
	@$(GO) build -o $(SERVE_DIR)/loadgen ./cmd/loadgen
	@set -e; \
	$(SERVE_DIR)/collabserve -addr 127.0.0.1:$(SERVE_PORT) -peers 1000 \
		-refresh 200ms & \
	pid=$$!; \
	trap 'kill $$pid 2>/dev/null || true' EXIT; \
	sleep 1; \
	$(SERVE_DIR)/loadgen -url http://127.0.0.1:$(SERVE_PORT) -peers 1000 \
		-duration $(SERVE_BENCH_DURATION) -writemix 0.9 -verify \
		-benchjson BENCH_$(BENCH_N).json; \
	kill -TERM $$pid; wait $$pid; \
	trap - EXIT; \
	echo "serve-bench: records merged into BENCH_$(BENCH_N).json"

# shard-smoke gates the sharded EigenTrust solver end to end: it runs the
# deterministic collusion-plus-churn workload through repinspect -shards,
# which prints per-shard balance for K ∈ {2,4,8} and exits non-zero if any
# sharded solve diverges bitwise from the serial reference (or needs a
# different round count). CI runs it in the figure-smoke job.
shard-smoke:
	$(GO) run ./cmd/repinspect -shards -peers 300 -clique 6 -boost 0.5 \
		-rejoin 150 -steps 2000
	@echo "shard-smoke: ok"

# clean removes scratch output only: BENCH_*.json are version-controlled
# trajectory records the bench-diff gate depends on, so they stay.
clean:
	rm -f bench.out cover.out cover.txt
	rm -rf figures
