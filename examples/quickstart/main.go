// Quickstart: the smallest end-to-end use of the library — build the
// paper's simulation with default (calibrated) parameters, run the
// train/reset/measure protocol, and print what the incentive scheme
// achieved.
package main

import (
	"fmt"
	"log"

	"collabnet/internal/agent"
	"collabnet/internal/incentive"
	"collabnet/internal/sim"
)

func main() {
	// A 60-peer network: 70% rational learners, 20% altruists, 10% vandals,
	// under the paper's reputation-based incentive scheme.
	cfg := sim.Default()
	cfg.Peers = 60
	cfg.Mix = sim.Mixture{Rational: 0.7, Altruistic: 0.2, Irrational: 0.1}
	cfg.Scheme = incentive.KindReputation
	cfg.TrainSteps = 3000
	cfg.MeasureSteps = 1500
	cfg.Seed = 7

	eng, err := sim.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("collabnet quickstart —", res.Scheme, "scheme")
	fmt.Printf("network: %d peers, %d measurement steps\n\n", res.Peers, res.Steps)
	fmt.Printf("shared articles  (network mean): %.3f\n", res.SharedArticles)
	fmt.Printf("shared bandwidth (network mean): %.3f\n\n", res.SharedBandwidth)

	for _, b := range []agent.Behavior{agent.Rational, agent.Altruistic, agent.Irrational} {
		s := res.PerBehavior[b]
		fmt.Printf("%-11s (%2d peers): articles=%.3f bandwidth=%.3f constructive-edits=%d destructive=%d\n",
			b, s.Peers, s.SharedArticles, s.SharedBandwidth, s.ConstructiveEdits, s.DestructiveEdits)
	}

	fmt.Printf("\ncommunity verdicts: %d good accepted, %d bad accepted, accuracy %.2f\n",
		res.AcceptedGood, res.AcceptedBad, res.VerdictAccuracy())
	fmt.Printf("downloads completed: %d (%.1f steps each)\n", res.Downloads, res.MeanDownloadTime)
	fmt.Printf("punishments: %d reputation resets, %d vote bans\n", res.Punishments, res.VoteBans)
}
