// Trustgraph: the reputation-propagation substrate the paper assumes to
// exist (Section I) made concrete. A network with an honest community and a
// colluding clique computes global trust with EigenTrust and subjective
// trust with MaxFlow, showing the collusion behavior Section II-C discusses;
// gossip dissemination is measured alongside.
package main

import (
	"fmt"
	"log"

	"collabnet/internal/reputation"
	"collabnet/internal/xrand"
)

func main() {
	const (
		honest    = 8 // peers 0..7 trade honestly
		colluders = 3 // peers 8..10 boost each other
		n         = honest + colluders
	)
	// The edge-log graph is the production trust store: writes append to a
	// log and a deterministic compaction folds them into a CSR adjacency.
	// Swapping in reputation.NewTrustGraph (the map-backed reference) gives
	// bit-identical results — the differential suite pins the two.
	g, err := reputation.NewLogGraph(n)
	if err != nil {
		log.Fatal(err)
	}
	rng := xrand.New(42)

	// Honest peers accumulate moderate pairwise trust from real exchanges.
	for i := 0; i < honest; i++ {
		for j := 0; j < honest; j++ {
			if i != j && rng.Bool(0.6) {
				g.AddTrust(i, j, 1+rng.Float64()*2)
			}
		}
	}
	// The clique self-promotes with enormous weights and one naive honest
	// peer (7) trusts a clique member slightly.
	for i := honest; i < n; i++ {
		for j := honest; j < n; j++ {
			if i != j {
				g.AddTrust(i, j, 500)
			}
		}
	}
	g.AddTrust(7, honest, 0.5)

	// EigenTrust with pre-trusted founders and damping.
	cfg := reputation.DefaultEigenTrust()
	cfg.PreTrusted = []int{0, 1}
	cfg.Damping = 0.15
	tv, err := reputation.EigenTrust(g, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("EigenTrust global trust (pre-trusted founders 0,1, damping 0.15):")
	printTrust(tv, honest)

	// The same graph WITHOUT damping: the clique absorbs the walk.
	raw := reputation.EigenTrustConfig{Damping: 0, Epsilon: 1e-12, MaxIter: 2000}
	tvRaw, err := reputation.EigenTrust(g, raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEigenTrust with damping 0 (the Section II-C collusion attack):")
	printTrust(tvRaw, honest)

	// MaxFlow trust from peer 0's perspective: structurally immune — the
	// clique's internal trust cannot exceed the thin cut leading into it.
	mf, err := reputation.MaxFlowTrust(g, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nMaxFlow trust as seen by peer 0:")
	printTrust(mf, honest)

	flow, err := reputation.MaxFlow(g, 0, honest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmax flow 0 -> first colluder: %.2f (bounded by the honest cut, not the clique's 500s)\n", flow)

	// How fast does a reputation update spread? Push gossip, fanout 2.
	res, err := reputation.Spread(1000, 0, reputation.DefaultGossip(), rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngossip: a reputation update reached %d/1000 peers in %d rounds (%d messages, converged=%v)\n",
		res.Informed, res.Rounds, res.Messages, res.Converged)
	fmt.Printf("analytic estimate: ~%d rounds\n", reputation.AntiEntropyRounds(1000, 2))
}

func printTrust(tv []float64, honest int) {
	for i, v := range tv {
		tag := "honest"
		if i >= honest {
			tag = "COLLUDER"
		}
		fmt.Printf("  peer %2d (%-8s) %.4f %s\n", i, tag, v, bar(v))
	}
}

func bar(v float64) string {
	n := int(v * 200)
	if n > 60 {
		n = 60
	}
	out := make([]byte, n)
	for i := range out {
		out[i] = '#'
	}
	return string(out)
}
