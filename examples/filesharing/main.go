// Filesharing: service differentiation in action at the transfer level.
// Three downloaders with different sharing histories compete for one
// source's upload bandwidth under each incentive scheme — the experiment
// shows why reputation supports non-direct relations where tit-for-tat
// does not (Section I of the paper).
package main

import (
	"fmt"
	"log"

	"collabnet/internal/incentive"
	"collabnet/internal/network"
)

const (
	generous = iota // shares fully, long history
	moderate        // shares half
	freeRider
	source // the peer everyone downloads from
	numPeers
)

var names = [...]string{"generous", "moderate", "free-rider", "source"}

func main() {
	for _, kind := range []incentive.Kind{
		incentive.KindNone, incentive.KindReputation,
		incentive.KindTitForTat, incentive.KindKarma,
	} {
		scheme, err := incentive.NewScheme(numPeers, incentive.Options{
			Kind: kind, WeightedVoting: true})
		if err != nil {
			log.Fatal(err)
		}
		// Build history: 80 steps of sharing at each peer's level. For
		// tit-for-tat and karma the history that matters is *transfers*:
		// the generous peer has uploaded to the source before (a direct
		// relation), the moderate peer uploaded to someone else (non-direct).
		for step := 0; step < 80; step++ {
			scheme.RecordSharing(generous, 1, 1)
			scheme.RecordSharing(moderate, 0.5, 0.5)
			scheme.RecordSharing(freeRider, 0, 0)
			scheme.RecordSharing(source, 1, 1)
			scheme.EndStep()
		}
		scheme.RecordTransfer(source, generous, 20)    // generous uploaded TO the source
		scheme.RecordTransfer(freeRider, moderate, 20) // moderate uploaded elsewhere

		// Now all three download from the source simultaneously.
		tm, err := network.NewTransferManager(12)
		if err != nil {
			log.Fatal(err)
		}
		for _, d := range []int{generous, moderate, freeRider} {
			if _, err := tm.Start(d, source); err != nil {
				log.Fatal(err)
			}
		}
		downloaders := []int{generous, moderate, freeRider}
		shares := make([]float64, len(downloaders))
		scheme.Allocate(source, downloaders, shares)

		fmt.Printf("== scheme: %s ==\n", scheme.Name())
		fmt.Printf("bandwidth split for simultaneous downloaders of %q:\n", names[source])
		for i, d := range downloaders {
			fmt.Printf("  %-10s %5.1f%%\n", names[d], shares[i]*100)
		}
		// Run the transfers to completion and report finish times.
		finished := map[int]int{}
		var res network.StepResult
		for step := 1; step <= 400 && tm.Active() > 0; step++ {
			tm.Step(func(int) float64 { return 1 }, scheme.Allocate, &res)
			for _, done := range res.Done {
				finished[done.Downloader] = step
			}
		}
		fmt.Println("download completion times (12-unit file, unit source bandwidth):")
		for _, d := range []int{generous, moderate, freeRider} {
			if s, ok := finished[d]; ok {
				fmt.Printf("  %-10s step %d\n", names[d], s)
			} else {
				fmt.Printf("  %-10s unfinished after 400 steps\n", names[d])
			}
		}
		fmt.Println()
	}
	fmt.Println("note the tit-for-tat column: the moderate peer's uploads to a third")
	fmt.Println("party earn it nothing here — reciprocity does not transfer across")
	fmt.Println("non-direct relations, which is the gap the reputation scheme closes.")
}
