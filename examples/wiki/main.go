// Wiki: a decentralized-wiki scenario built directly on the collaboration
// substrate (articles + weighted voting + the core reputation scheme),
// without the simulation engine. A small community of authors maintains
// articles stored on a consistent-hash overlay; a vandal tries to deface
// them; the weighted vote and the punishment machinery contain the damage.
package main

import (
	"fmt"
	"log"

	"collabnet/internal/articles"
	"collabnet/internal/core"
	"collabnet/internal/network"
)

const (
	alice = iota
	bob
	carol
	dave // the vandal
	numPeers
)

var names = [...]string{"alice", "bob", "carol", "dave"}

func main() {
	book, err := core.NewBook(numPeers, core.Default())
	if err != nil {
		log.Fatal(err)
	}
	store := articles.NewStore()

	// Articles live on a consistent-hash ring, replicated three ways.
	ring, err := network.NewRing(32)
	if err != nil {
		log.Fatal(err)
	}
	for p := 0; p < numPeers; p++ {
		if err := ring.Add(p); err != nil {
			log.Fatal(err)
		}
	}

	// Everyone shares resources for a while; the honest authors fully, the
	// vandal not at all — reputations diverge accordingly.
	for step := 0; step < 60; step++ {
		for p := 0; p < numPeers; p++ {
			level := 1.0
			if p == dave {
				level = 0.0
			}
			book.Ledger(p).StepSharing(level, level)
		}
	}
	fmt.Println("sharing reputations after 60 steps:")
	for p := 0; p < numPeers; p++ {
		l := book.Ledger(p)
		fmt.Printf("  %-6s RS=%.3f edit-right=%v\n", names[p], l.RS(), l.CanEdit())
	}

	// Alice founds an article; the ring decides which peers replicate it.
	title := "Incentive Schemes in P2P Networks"
	art := store.Create(title, alice, 0)
	replicas, err := ring.Replicas(title, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%q stored on peers %v\n", title, replicas)

	// Bob contributes a good edit. Voters: previous successful editors of
	// the article (just alice so far), weighted by editing reputation.
	edit := func(editor int, good bool) {
		quality := articles.Good
		if !good {
			quality = articles.Bad
		}
		prop := articles.Proposal{Article: art.ID, Editor: editor, Quality: quality}
		eligible := func(v int) bool {
			return v != editor && art.IsEditor(v) && book.Ledger(v).CanVote()
		}
		sess := articles.NewSession(prop, eligible)
		for _, voter := range art.Editors() {
			if !eligible(voter) {
				continue
			}
			// Honest community: approve good edits, reject vandalism.
			ballot := articles.Ballot{
				Voter:   voter,
				Approve: quality == articles.Good,
				Weight:  book.Ledger(voter).RE(),
			}
			if ballot.Weight <= 0 {
				ballot.Weight = 1e-9
			}
			if err := sess.Cast(ballot); err != nil {
				log.Fatal(err)
			}
		}
		majority := core.RequiredMajority(book.Params(), book.Ledger(editor).RE())
		out, err := sess.Resolve(majority, art.IsEditor(editor))
		if err != nil {
			log.Fatal(err)
		}
		book.Ledger(editor).RecordEditOutcome(out.Accepted)
		for _, w := range out.Winners {
			book.Ledger(w).RecordVoteOutcome(true)
		}
		for _, l := range out.Losers {
			book.Ledger(l).RecordVoteOutcome(false)
		}
		if out.Accepted {
			if err := store.ApplyAccepted(art.ID, editor, 0, quality); err != nil {
				log.Fatal(err)
			}
		}
		book.Ledger(editor).StepEditing(0, map[bool]int{true: 1, false: 0}[out.Accepted])
		verdict := "DECLINED"
		if out.Accepted {
			verdict = "ACCEPTED"
		}
		kind := "constructive"
		if quality == articles.Bad {
			kind = "destructive"
		}
		fmt.Printf("  %s edit by %-6s -> %s (majority needed %.2f, approval %.2f)\n",
			kind, names[editor], verdict, majority, safeRatio(out.ApproveWeight, out.TotalWeight))
	}

	fmt.Println("\nedit history:")
	edit(bob, true)   // accepted by alice's vote
	edit(carol, true) // accepted by alice+bob
	// Dave the vandal: repeated destructive edits. He can edit only if his
	// RS clears θ — it does not (he never shared), so his edits are blocked
	// at the gate. Show what the gate prevents.
	if !book.Ledger(dave).CanEdit() {
		fmt.Printf("  destructive edit by dave   -> BLOCKED (RS=%.3f below θ=%.2f)\n",
			book.Ledger(dave).RS(), book.Params().EditTheta)
	}
	// Suppose dave grinds out the minimum sharing to pass the gate…
	for step := 0; step < 10; step++ {
		book.Ledger(dave).StepSharing(0.5, 0.5)
	}
	fmt.Printf("\ndave shares 50%% for 10 steps: RS=%.3f, edit-right=%v\n",
		book.Ledger(dave).RS(), book.Ledger(dave).CanEdit())
	fmt.Println("\ndave's vandalism spree:")
	for i := 0; i < book.Params().MaxEditFails; i++ {
		edit(dave, false)
	}
	fmt.Printf("\nafter %d declined edits dave is punished: RS=%.3f RE=%.3f edit-right=%v\n",
		book.Params().MaxEditFails, book.Ledger(dave).RS(), book.Ledger(dave).RE(),
		book.Ledger(dave).CanEdit())

	good, bad := art.QualityBalance()
	fmt.Printf("\narticle quality: %d good revisions, %d vandalized revisions\n", good, bad)
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
